//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock harness exposing the API subset the workspace's
//! benches use: `criterion_group!`/`criterion_main!`, benchmark groups with
//! `throughput`/`sample_size`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, and `Bencher::iter`. Results go to stdout as
//! `group/bench  mean ± spread  (throughput)` lines.
//!
//! Each benchmark runs one warm-up iteration, then measures up to
//! `sample_size` iterations, time-boxed (`CRITERION_MAX_SECS`, default 2s per
//! benchmark) so heavyweight BFS benches stay tractable. Pass `--test` (as
//! `cargo test --benches` does) or set `CRITERION_QUICK=1` to run a single
//! smoke iteration per benchmark.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
    max_samples: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed run.
        black_box(f());
        let budget = self.budget;
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.elapsed += t0.elapsed();
            iters += 1;
            if iters >= self.max_samples || start.elapsed() >= budget {
                break;
            }
        }
        self.iters_done += iters;
    }

    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, f: F) {
        self.iter(f);
    }
}

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test")
        || std::env::var("CRITERION_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false)
}

fn max_secs() -> f64 {
    std::env::var("CRITERION_MAX_SECS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(2.0)
}

pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free CLI arg (as passed by `cargo bench -- <filter>`) filters
        // benchmark labels by substring.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }

    fn matches(&self, label: &str) -> bool {
        match &self.filter {
            Some(f) => label.contains(f.as_str()),
            None => true,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.label, &mut |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.label, &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run_one(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = if self.name.is_empty() {
            label.to_string()
        } else {
            format!("{}/{}", self.name, label)
        };
        if !self._parent.matches(&full) {
            return;
        }
        let quick = quick_mode();
        let mut bencher = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            budget: if quick {
                Duration::ZERO
            } else {
                Duration::from_secs_f64(max_secs())
            },
            max_samples: if quick { 1 } else { self.sample_size as u64 },
        };
        f(&mut bencher);
        if bencher.iters_done == 0 {
            println!("{full:<56} (no iterations)");
            return;
        }
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters_done as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) | Some(Throughput::BytesDecimal(b)) => {
                format!("  {:>10.1} MiB/s", b as f64 / per_iter / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.3} Melem/s", n as f64 / per_iter / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{full:<56} {:>12}  ({} iters){rate}",
            format_time(per_iter),
            bencher.iters_done
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(4096));
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.finish();
        // warm-up + 1 measured iteration in quick mode
        assert!(count >= 2);
    }
}
