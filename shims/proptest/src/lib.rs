//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace uses: the `proptest!` macro (both
//! `pat in strategy` and `name: type` argument forms, optional
//! `#![proptest_config(..)]` header), integer/float range strategies, tuple
//! strategies, `collection::{vec, btree_set}`, `option::of`, `any::<T>()`,
//! `prop_map`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate: generation is a deterministic SplitMix64
//! stream (override the seed with `PROPTEST_SEED`, the case count with
//! `PROPTEST_CASES`), and failing cases are reported without shrinking — the
//! panic message carries the `Debug` form of the offending input where the
//! test asserts with `prop_assert*`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Modulo bias is irrelevant at test-case scale.
        self.next_u64() % n
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

pub mod strategy {
    use super::TestRng;

    /// A generator of test values. Unlike real proptest there is no value
    /// tree / shrinking; `generate` produces the final value directly.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub use strategy::{Just, Strategy};

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

pub mod arbitrary {
    use super::{PhantomData, Strategy, TestRng};

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

// ---------------------------------------------------------------------------
// collection / option
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end.max(r.start + 1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end().saturating_add(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_exclusive - self.lo) as u64;
            self.lo + rng.below(span.max(1)) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = std::collections::BTreeSet::new();
            // Duplicates shrink the set below `target`; bounded retries keep
            // generation total even for narrow element domains.
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

pub mod test_runner {
    use super::{Strategy, TestRng};

    /// Runner configuration; `ProptestConfig` in the prelude.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
        pub max_shrink_iters: u32,
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(96);
            Config {
                cases,
                max_shrink_iters: 0,
                max_global_rejects: 1024,
            }
        }
    }

    pub fn run_cases<S, F>(config: &Config, strategy: &S, mut body: F)
    where
        S: Strategy,
        F: FnMut(S::Value),
    {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0x5EED_5EED_5EED_5EEDu64);
        let mut rng = TestRng::new(seed);
        for _ in 0..config.cases {
            body(strategy.generate(&mut rng));
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_args! {
                cfg = $cfg;
                body = $body;
                pats = ();
                strats = ();
                rest = [$($args)*]
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_args {
    // All arguments consumed: run the cases.
    (cfg = $cfg:expr; body = $body:block;
     pats = ($($pat:pat,)*); strats = ($($strat:expr,)*); rest = []) => {{
        let config = $cfg;
        let strategy = ($($strat,)*);
        $crate::test_runner::run_cases(&config, &strategy, |($($pat,)*)| $body);
    }};
    // `pat in strategy, ...`
    (cfg = $cfg:expr; body = $body:block;
     pats = ($($pat:pat,)*); strats = ($($strat:expr,)*);
     rest = [$p:pat in $s:expr, $($rest:tt)*]) => {
        $crate::__proptest_args! {
            cfg = $cfg; body = $body;
            pats = ($($pat,)* $p,);
            strats = ($($strat,)* $s,);
            rest = [$($rest)*]
        }
    };
    // `pat in strategy` (final argument)
    (cfg = $cfg:expr; body = $body:block;
     pats = ($($pat:pat,)*); strats = ($($strat:expr,)*);
     rest = [$p:pat in $s:expr]) => {
        $crate::__proptest_args! {
            cfg = $cfg; body = $body;
            pats = ($($pat,)* $p,);
            strats = ($($strat,)* $s,);
            rest = []
        }
    };
    // `name: Type, ...`
    (cfg = $cfg:expr; body = $body:block;
     pats = ($($pat:pat,)*); strats = ($($strat:expr,)*);
     rest = [$id:ident : $t:ty, $($rest:tt)*]) => {
        $crate::__proptest_args! {
            cfg = $cfg; body = $body;
            pats = ($($pat,)* $id,);
            strats = ($($strat,)* $crate::arbitrary::any::<$t>(),);
            rest = [$($rest)*]
        }
    };
    // `name: Type` (final argument)
    (cfg = $cfg:expr; body = $body:block;
     pats = ($($pat:pat,)*); strats = ($($strat:expr,)*);
     rest = [$id:ident : $t:ty]) => {
        $crate::__proptest_args! {
            cfg = $cfg; body = $body;
            pats = ($($pat,)* $id,);
            strats = ($($strat,)* $crate::arbitrary::any::<$t>(),);
            rest = []
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, Vec<u32>)> {
        (1u64..50, crate::collection::vec(0u32..10, 0..8)).prop_map(|(n, v)| (n + 1, v))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Mixed argument forms parse and stay in range.
        #[test]
        fn mixed_args(x in 1u32..=7, seed: u64, (n, v) in arb_pair(), flip in 0usize..2,) {
            prop_assert!((1..=7).contains(&x));
            prop_assert!((2..52).contains(&n));
            prop_assert!(v.len() < 8);
            prop_assert!(flip < 2);
            let _ = seed;
        }

        #[test]
        fn assume_skips(a in 0u32..100) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy as _;
        let s = (0u64..1000, 0u64..1000);
        let mut r1 = crate::TestRng::new(7);
        let mut r2 = crate::TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
