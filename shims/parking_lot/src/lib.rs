//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! tiny API-compatible subset backed by `std::sync`. Semantics match what the
//! code base relies on: `lock()` returns the guard directly (poisoning is
//! swallowed, as parking_lot has no poisoning).

use std::sync::TryLockError;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
