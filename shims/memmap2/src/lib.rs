//! Offline stand-in for the `memmap2` crate.
//!
//! Implements only what the workspace uses: `Mmap::map(&File)` producing a
//! read-only mapping that derefs to `[u8]`. Backed by raw `mmap(2)` /
//! `munmap(2)` declared directly (the C library is always linked by std on
//! this platform), so no external crate is needed.

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::os::fd::AsRawFd;

#[allow(non_camel_case_types)]
type c_int = i32;
#[allow(non_camel_case_types)]
type c_void = core::ffi::c_void;

const PROT_READ: c_int = 1;
const MAP_PRIVATE: c_int = 2;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
}

/// A read-only memory map of an entire file.
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// The mapping is immutable shared memory; &[u8] access from any thread is fine.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only in its entirety.
    ///
    /// # Safety
    /// As with the real crate: the caller must ensure the underlying file is
    /// not truncated or mutated in ways that would invalidate the mapping.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map",
            ));
        }
        let len = len as usize;
        if len == 0 {
            // mmap(2) rejects zero-length mappings; model it as an empty slice.
            return Ok(Mmap {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        let ptr = mmap(
            std::ptr::null_mut(),
            len,
            PROT_READ,
            MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        );
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *const u8,
            len,
        })
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("ptr", &self.ptr)
            .field("len", &self.len)
            .finish()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len != 0 {
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let mut path = std::env::temp_dir();
        path.push(format!("memmap2_shim_test_{}", std::process::id()));
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(b"hello mmap").unwrap();
        }
        let f = File::open(&path).unwrap();
        let m = unsafe { Mmap::map(&f) }.unwrap();
        assert_eq!(&m[..], b"hello mmap");
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_empty() {
        let mut path = std::env::temp_dir();
        path.push(format!("memmap2_shim_empty_{}", std::process::id()));
        File::create(&path).unwrap();
        let f = File::open(&path).unwrap();
        let m = unsafe { Mmap::map(&f) }.unwrap();
        assert!(m.is_empty());
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }
}
