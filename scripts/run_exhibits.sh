#!/usr/bin/env bash
# Regenerate every paper exhibit, ablation, and extension experiment into
# results/. Knobs: SEMBFS_SCALE (default 18), SEMBFS_SMALL_SCALE (15),
# SEMBFS_ROOTS (8), SEMBFS_SEED (1), SEMBFS_DOMAINS (4),
# SEMBFS_DEVICE_SCALE (1.0).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p sembfs-bench --bins

mkdir -p results
bins=(
    table02_graph_size
    fig03_graph_size
    fig07_sweep
    fig08_bfs_performance
    fig09_bfs_performance_small
    fig10_traversed_edges
    fig11_degradation_by_degree
    fig12_avgqusz
    fig13_avgrqsz
    fig14_bg_offload
    ablation_io_aggregation
    ablation_dram_index
    ablation_policies
    ablation_relabel
    ablation_striping
    ext_dist_scaling
    ext_green500
    ext_device_study
)
for bin in "${bins[@]}"; do
    echo "== $bin =="
    ./target/release/"$bin" | tee "results/$bin.txt"
    echo
done
echo "all exhibits captured in results/"
